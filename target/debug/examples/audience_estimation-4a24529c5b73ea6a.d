/root/repo/target/debug/examples/audience_estimation-4a24529c5b73ea6a.d: examples/audience_estimation.rs Cargo.toml

/root/repo/target/debug/examples/libaudience_estimation-4a24529c5b73ea6a.rmeta: examples/audience_estimation.rs Cargo.toml

examples/audience_estimation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
