/root/repo/target/debug/examples/tcp_capture-a79410e21ec53069.d: examples/tcp_capture.rs

/root/repo/target/debug/examples/tcp_capture-a79410e21ec53069: examples/tcp_capture.rs

examples/tcp_capture.rs:
