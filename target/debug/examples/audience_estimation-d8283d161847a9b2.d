/root/repo/target/debug/examples/audience_estimation-d8283d161847a9b2.d: examples/audience_estimation.rs

/root/repo/target/debug/examples/audience_estimation-d8283d161847a9b2: examples/audience_estimation.rs

examples/audience_estimation.rs:
