/root/repo/target/debug/examples/quickstart-0305d0b372f9baab.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0305d0b372f9baab: examples/quickstart.rs

examples/quickstart.rs:
