/root/repo/target/debug/examples/capture_campaign-d64eef37f1abdc91.d: examples/capture_campaign.rs

/root/repo/target/debug/examples/capture_campaign-d64eef37f1abdc91: examples/capture_campaign.rs

examples/capture_campaign.rs:
