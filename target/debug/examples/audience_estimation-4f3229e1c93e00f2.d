/root/repo/target/debug/examples/audience_estimation-4f3229e1c93e00f2.d: examples/audience_estimation.rs

/root/repo/target/debug/examples/audience_estimation-4f3229e1c93e00f2: examples/audience_estimation.rs

examples/audience_estimation.rs:
