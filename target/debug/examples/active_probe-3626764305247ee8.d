/root/repo/target/debug/examples/active_probe-3626764305247ee8.d: examples/active_probe.rs Cargo.toml

/root/repo/target/debug/examples/libactive_probe-3626764305247ee8.rmeta: examples/active_probe.rs Cargo.toml

examples/active_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
