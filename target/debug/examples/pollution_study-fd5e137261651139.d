/root/repo/target/debug/examples/pollution_study-fd5e137261651139.d: examples/pollution_study.rs Cargo.toml

/root/repo/target/debug/examples/libpollution_study-fd5e137261651139.rmeta: examples/pollution_study.rs Cargo.toml

examples/pollution_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
