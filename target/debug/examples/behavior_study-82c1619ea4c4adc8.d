/root/repo/target/debug/examples/behavior_study-82c1619ea4c4adc8.d: examples/behavior_study.rs

/root/repo/target/debug/examples/behavior_study-82c1619ea4c4adc8: examples/behavior_study.rs

examples/behavior_study.rs:
