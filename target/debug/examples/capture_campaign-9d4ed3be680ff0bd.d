/root/repo/target/debug/examples/capture_campaign-9d4ed3be680ff0bd.d: examples/capture_campaign.rs Cargo.toml

/root/repo/target/debug/examples/libcapture_campaign-9d4ed3be680ff0bd.rmeta: examples/capture_campaign.rs Cargo.toml

examples/capture_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
